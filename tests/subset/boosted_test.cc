// The boosted algorithms must compute exactly the same skyline as their
// bases, and on UI data must spend fewer dominance tests — the paper's
// headline claim.
#include <gtest/gtest.h>

#include "src/algo/registry.h"
#include "src/core/verify.h"
#include "src/data/generator.h"
#include "src/subset/boosted.h"

namespace skyline {
namespace {

struct BoostCase {
  std::string base;
  std::string boosted;
  DataType type;
  unsigned dims;
  std::size_t points;
  std::uint64_t seed;
};

class BoostedEquivalenceTest : public ::testing::TestWithParam<BoostCase> {};

TEST_P(BoostedEquivalenceTest, SameSkylineAsBase) {
  const auto& c = GetParam();
  Dataset data = Generate(c.type, c.points, c.dims, c.seed);
  auto base = MakeAlgorithm(c.base);
  auto boosted = MakeAlgorithm(c.boosted);
  ASSERT_NE(base, nullptr);
  ASSERT_NE(boosted, nullptr);
  EXPECT_TRUE(SameIdSet(base->Compute(data), boosted->Compute(data)));
}

std::vector<BoostCase> EquivalenceGrid() {
  std::vector<BoostCase> grid;
  for (const auto& [base, boosted] : BoostedPairs()) {
    for (DataType type : {DataType::kAntiCorrelated, DataType::kCorrelated,
                          DataType::kUniformIndependent}) {
      for (unsigned d : {2u, 4u, 8u, 12u}) {
        grid.push_back({base, boosted, type, d, 600, 42});
      }
      grid.push_back({base, boosted, type, 6, 1500, 7});
    }
  }
  return grid;
}

std::string BoostName(const ::testing::TestParamInfo<BoostCase>& info) {
  std::ostringstream out;
  out << info.param.boosted << "_" << ShortName(info.param.type) << "_"
      << info.param.dims << "d_" << info.param.points << "n_s"
      << info.param.seed;
  std::string name = out.str();
  for (char& c : name) {
    if (c == '-') c = '_';
  }
  return name;
}

INSTANTIATE_TEST_SUITE_P(Grid, BoostedEquivalenceTest,
                         ::testing::ValuesIn(EquivalenceGrid()), BoostName);

class BoostedReductionTest
    : public ::testing::TestWithParam<std::pair<std::string, std::string>> {};

TEST_P(BoostedReductionTest, FewerDominanceTestsOnHighDimUniformData) {
  // Table 10's regime: 8-D UI data is where the subset approach shines.
  const auto& [base_name, boosted_name] = GetParam();
  Dataset data = Generate(DataType::kUniformIndependent, 8000, 8, 3);
  auto base = MakeAlgorithm(base_name);
  auto boosted = MakeAlgorithm(boosted_name);
  SkylineStats base_stats, boosted_stats;
  auto base_result = base->Compute(data, &base_stats);
  auto boosted_result = boosted->Compute(data, &boosted_stats);
  EXPECT_TRUE(SameIdSet(base_result, boosted_result));
  EXPECT_LT(boosted_stats.dominance_tests, base_stats.dominance_tests)
      << boosted_name << " did not reduce dominance tests";
}

TEST_P(BoostedReductionTest, FewerDominanceTestsOnAntiCorrelatedData) {
  // Table 2's regime at reduced scale: AC data, moderate dimensionality.
  const auto& [base_name, boosted_name] = GetParam();
  Dataset data = Generate(DataType::kAntiCorrelated, 4000, 8, 3);
  auto base = MakeAlgorithm(base_name);
  auto boosted = MakeAlgorithm(boosted_name);
  SkylineStats base_stats, boosted_stats;
  auto base_result = base->Compute(data, &base_stats);
  auto boosted_result = boosted->Compute(data, &boosted_stats);
  EXPECT_TRUE(SameIdSet(base_result, boosted_result));
  EXPECT_LT(boosted_stats.dominance_tests, base_stats.dominance_tests);
}

INSTANTIATE_TEST_SUITE_P(
    Pairs, BoostedReductionTest,
    ::testing::Values(std::make_pair("sfs", "sfs-subset"),
                      std::make_pair("salsa", "salsa-subset"),
                      std::make_pair("sdi", "sdi-subset")),
    [](const auto& info) {
      std::string name = info.param.second;
      for (char& c : name) {
        if (c == '-') c = '_';
      }
      return name;
    });

TEST(BoostedStatsTest, InstrumentationIsFilled) {
  Dataset data = Generate(DataType::kUniformIndependent, 3000, 8, 5);
  SkylineStats stats;
  auto result = SdiSubset().Compute(data, &stats);
  EXPECT_GT(stats.pivot_count, 0u);
  EXPECT_GT(stats.index_queries, 0u);
  EXPECT_GT(stats.index_nodes_visited, 0u);
  EXPECT_EQ(stats.skyline_size, result.size());
  // Candidates returned by the index are a subset of all skyline points
  // per query on average — the pruning the paper is about.
  EXPECT_LT(stats.index_candidates,
            stats.index_queries * result.size());
}

TEST(BoostedSigmaTest, AnySigmaGivesTheCorrectSkyline) {
  Dataset data = Generate(DataType::kUniformIndependent, 1200, 6, 11);
  const auto expected = ReferenceSkyline(data);
  for (int sigma = 1; sigma <= 6; ++sigma) {
    AlgorithmOptions options;
    options.sigma = sigma;
    for (const char* name : {"sfs-subset", "salsa-subset", "sdi-subset"}) {
      auto algo = MakeAlgorithm(name, options);
      EXPECT_TRUE(SameIdSet(algo->Compute(data), expected))
          << name << " sigma=" << sigma;
    }
  }
}

TEST(BoostedEdgeTest, DatasetSmallerThanPivotDemand) {
  // Fewer points than the sigma rule would like to inspect.
  Dataset data = Dataset::FromRows({{1, 2, 3}, {3, 2, 1}});
  AlgorithmOptions options;
  options.sigma = 3;
  for (const char* name : {"sfs-subset", "salsa-subset", "sdi-subset"}) {
    auto algo = MakeAlgorithm(name, options);
    EXPECT_EQ(algo->Compute(data).size(), 2u) << name;
  }
}

TEST(BoostedEdgeTest, EverythingPrunedByFirstPivot) {
  Dataset data = Dataset::FromRows({{1, 1}, {2, 2}, {3, 3}, {2, 3}});
  for (const char* name : {"sfs-subset", "salsa-subset", "sdi-subset"}) {
    auto algo = MakeAlgorithm(name);
    EXPECT_TRUE(SameIdSet(algo->Compute(data), {0})) << name;
  }
}

}  // namespace
}  // namespace skyline
