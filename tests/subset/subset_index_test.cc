#include "src/subset/subset_index.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <random>
#include <set>
#include <utility>
#include <vector>

namespace skyline {
namespace {

std::vector<PointId> Sorted(std::vector<PointId> v) {
  std::sort(v.begin(), v.end());
  return v;
}

TEST(SubsetIndexTest, EmptyIndexReturnsNothing) {
  SubsetIndex index(6);
  std::vector<PointId> out;
  index.Query(Subspace{0, 1}, &out);
  EXPECT_TRUE(out.empty());
  EXPECT_EQ(index.num_nodes(), 0u);
  EXPECT_EQ(index.num_points(), 0u);
}

TEST(SubsetIndexTest, PaperFigure3Example) {
  // The subspaces of Figure 3 (stored *reversed* paths):
  // {1,2},{1,3,5,7},{1,5},{1,7},{3,5},{3,7},{5,7} over an 8-dim space
  // (we use 0-based dims 0..7, so the paths are exactly these sets).
  SubsetIndex index(8);
  const std::vector<std::pair<PointId, Subspace>> reversed_paths = {
      {0, Subspace{1, 2}},       {1, Subspace{1, 3, 5, 7}},
      {2, Subspace{1, 5}},       {3, Subspace{1, 7}},
      {4, Subspace{3, 5}},       {5, Subspace{3, 7}},
      {6, Subspace{5, 7}},
  };
  for (const auto& [id, rev] : reversed_paths) {
    index.Add(id, rev.Complement(8));  // Add reverses internally
  }
  // Query set {1,3,5} (reversed) should return the points stored at the
  // subset paths {1,5}, {3,5} — and none containing 2 or 7.
  std::vector<PointId> out;
  index.Query(Subspace({1, 3, 5}).Complement(8), &out);
  EXPECT_EQ(Sorted(out), (std::vector<PointId>{2, 4}));
}

TEST(SubsetIndexTest, AddThenQueryExactSubspace) {
  SubsetIndex index(4);
  index.Add(7, Subspace{0, 2});
  std::vector<PointId> out;
  index.Query(Subspace{0, 2}, &out);
  EXPECT_EQ(out, std::vector<PointId>{7});
}

TEST(SubsetIndexTest, QueryReturnsSupersetSubspacesOnly) {
  SubsetIndex index(4);
  index.Add(1, Subspace{0});          // D_1 = {0}
  index.Add(2, Subspace{0, 1});       // D_2 = {0,1}
  index.Add(3, Subspace{1});          // D_3 = {1}
  index.Add(4, Subspace{0, 1, 2});    // D_4 = {0,1,2}

  std::vector<PointId> out;
  index.Query(Subspace{0, 1}, &out);  // supersets of {0,1}: D_2, D_4
  EXPECT_EQ(Sorted(out), (std::vector<PointId>{2, 4}));

  out.clear();
  index.Query(Subspace{0}, &out);  // supersets of {0}: D_1, D_2, D_4
  EXPECT_EQ(Sorted(out), (std::vector<PointId>{1, 2, 4}));

  out.clear();
  index.Query(Subspace{2}, &out);  // supersets of {2}: D_4 only
  EXPECT_EQ(Sorted(out), (std::vector<PointId>{4}));
}

TEST(SubsetIndexTest, FullSubspaceIsAlwaysCandidate) {
  SubsetIndex index(4);
  index.Add(9, Subspace::Full(4));  // reversed path empty -> root
  for (std::uint64_t bits = 1; bits < 16; ++bits) {
    std::vector<PointId> out;
    index.Query(Subspace(bits), &out);
    EXPECT_EQ(out, std::vector<PointId>{9}) << bits;
  }
}

TEST(SubsetIndexTest, AddAlwaysCandidateEqualsFullSubspaceAdd) {
  SubsetIndex a(5), b(5);
  a.AddAlwaysCandidate(3);
  b.Add(3, Subspace::Full(5));
  for (std::uint64_t bits = 0; bits < 32; ++bits) {
    std::vector<PointId> out_a, out_b;
    a.Query(Subspace(bits), &out_a);
    b.Query(Subspace(bits), &out_b);
    EXPECT_EQ(out_a, out_b);
  }
}

TEST(SubsetIndexTest, AddAlwaysCandidateCountsTowardNumPoints) {
  // Regression: AddAlwaysCandidate used to push into the root without
  // incrementing num_points_, under-reporting after pivot registration.
  SubsetIndex index(4);
  index.AddAlwaysCandidate(1);
  index.AddAlwaysCandidate(2);
  EXPECT_EQ(index.num_points(), 2u);
  index.Add(3, Subspace{0, 1});
  EXPECT_EQ(index.num_points(), 3u);
  // Removing a root-registered id keeps the counter consistent.
  EXPECT_TRUE(index.Remove(1, Subspace::Full(4)));
  EXPECT_EQ(index.num_points(), 2u);
}

TEST(SubsetIndexTest, MergeFromSplicesAllEntries) {
  SubsetIndex a(5), b(5);
  a.Add(1, Subspace{0});
  a.Add(2, Subspace{0, 1});
  b.Add(3, Subspace{0});      // shares a's path
  b.Add(4, Subspace{2, 3});   // new path
  b.AddAlwaysCandidate(5);    // root entry
  const std::size_t a_nodes = a.num_nodes();

  a.MergeFrom(std::move(b));
  EXPECT_EQ(a.num_points(), 5u);
  EXPECT_GT(a.num_nodes(), a_nodes);

  std::vector<PointId> out;
  a.Query(Subspace{0}, &out);  // supersets of {0}: ids 1..3 + root id 5
  EXPECT_EQ(Sorted(out), (std::vector<PointId>{1, 2, 3, 5}));
  out.clear();
  a.Query(Subspace{2, 3}, &out);
  EXPECT_EQ(Sorted(out), (std::vector<PointId>{4, 5}));
}

TEST(SubsetIndexTest, MergeFromLeavesSourceEmptyAndReusable) {
  SubsetIndex a(4), b(4);
  b.Add(1, Subspace{0, 2});
  a.MergeFrom(std::move(b));
  EXPECT_EQ(b.num_points(), 0u);
  EXPECT_EQ(b.num_nodes(), 0u);
  std::vector<PointId> out;
  b.Query(Subspace{0, 2}, &out);
  EXPECT_TRUE(out.empty());
  // The moved-from index accepts new entries again.
  b.Add(7, Subspace{1});
  out.clear();
  b.Query(Subspace{1}, &out);
  EXPECT_EQ(out, std::vector<PointId>{7});
}

// Property test: merging T indexes answers queries exactly like one
// index that received every Add — the invariant the parallel engine's
// shared cross-filter index is built on.
class SubsetIndexMergePropertyTest : public ::testing::TestWithParam<int> {};

TEST_P(SubsetIndexMergePropertyTest, MergedEqualsSingleIndex) {
  std::mt19937_64 rng(GetParam());
  const Dim d = 2 + static_cast<Dim>(rng() % 10);  // 2..11 dims
  const std::uint64_t space = Subspace::Full(d).bits();
  const int num_parts = 2 + static_cast<int>(rng() % 4);  // 2..5 sources

  SubsetIndex reference(d);
  std::vector<SubsetIndex> parts;
  for (int t = 0; t < num_parts; ++t) parts.emplace_back(d);
  for (PointId id = 0; id < 400; ++id) {
    Subspace mask(rng() & space);
    if (mask.empty()) mask = Subspace::Full(d);
    reference.Add(id, mask);
    parts[id % num_parts].Add(id, mask);
  }

  SubsetIndex merged(d);
  for (SubsetIndex& part : parts) merged.MergeFrom(std::move(part));
  EXPECT_EQ(merged.num_points(), reference.num_points());
  EXPECT_EQ(merged.num_nodes(), reference.num_nodes());

  for (int q = 0; q < 60; ++q) {
    Subspace query(rng() & space);
    std::vector<PointId> got, expected;
    merged.Query(query, &got);
    reference.Query(query, &expected);
    ASSERT_EQ(Sorted(got), Sorted(expected))
        << "d=" << d << " query=" << query.ToString();
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SubsetIndexMergePropertyTest,
                         ::testing::Values(31, 32, 33, 34, 35, 36));

TEST(SubsetIndexTest, MultiplePointsPerSubspaceShareOneNode) {
  SubsetIndex index(6);
  index.Add(1, Subspace{2, 4});
  const std::size_t nodes_after_first = index.num_nodes();
  index.Add(2, Subspace{2, 4});
  index.Add(3, Subspace{2, 4});
  EXPECT_EQ(index.num_nodes(), nodes_after_first);
  EXPECT_EQ(index.num_points(), 3u);
  std::vector<PointId> out;
  index.Query(Subspace{2, 4}, &out);
  EXPECT_EQ(Sorted(out), (std::vector<PointId>{1, 2, 3}));
}

TEST(SubsetIndexTest, NodeCountMatchesDistinctPrefixes) {
  SubsetIndex index(8);
  // Reversed paths: {0,1} and {0,2} share the prefix node 0.
  index.Add(1, Subspace({0, 1}).Complement(8));
  index.Add(2, Subspace({0, 2}).Complement(8));
  EXPECT_EQ(index.num_nodes(), 3u);  // nodes 0, 0->1, 0->2
}

TEST(SubsetIndexTest, NodesVisitedCounterGrows) {
  SubsetIndex index(6);
  index.Add(1, Subspace{0});
  index.Add(2, Subspace{1});
  std::uint64_t visited = 0;
  std::vector<PointId> out;
  index.Query(Subspace{0}, &out, &visited);
  EXPECT_GT(visited, 0u);
}

// Property test: the index must agree with a brute-force superset filter
// over random mask multisets and random queries.
class SubsetIndexPropertyTest : public ::testing::TestWithParam<int> {};

TEST_P(SubsetIndexPropertyTest, AgreesWithBruteForce) {
  std::mt19937_64 rng(GetParam());
  const Dim d = 2 + static_cast<Dim>(rng() % 14);  // 2..15 dims
  const std::uint64_t space = Subspace::Full(d).bits();
  SubsetIndex index(d);
  std::vector<std::pair<PointId, Subspace>> stored;
  for (PointId id = 0; id < 300; ++id) {
    Subspace mask(rng() & space);
    if (mask.empty()) mask = Subspace::Full(d);
    index.Add(id, mask);
    stored.emplace_back(id, mask);
  }
  for (int q = 0; q < 100; ++q) {
    Subspace query(rng() & space);
    std::vector<PointId> got;
    index.Query(query, &got);
    std::vector<PointId> expected;
    for (const auto& [id, mask] : stored) {
      if (mask.IsSupersetOf(query)) expected.push_back(id);
    }
    ASSERT_EQ(Sorted(got), Sorted(expected))
        << "d=" << d << " query=" << query.ToString();
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SubsetIndexPropertyTest,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8, 9, 10));

TEST(SubsetIndexTest, QueryContainedReturnsSubsetSubspacesOnly) {
  SubsetIndex index(4);
  index.Add(1, Subspace{0});
  index.Add(2, Subspace{0, 1});
  index.Add(3, Subspace{1});
  index.Add(4, Subspace{0, 1, 2});

  std::vector<PointId> out;
  index.QueryContained(Subspace{0, 1}, &out);  // subsets of {0,1}
  EXPECT_EQ(Sorted(out), (std::vector<PointId>{1, 2, 3}));

  out.clear();
  index.QueryContained(Subspace{0}, &out);
  EXPECT_EQ(Sorted(out), (std::vector<PointId>{1}));

  out.clear();
  index.QueryContained(Subspace::Full(4), &out);  // everything
  EXPECT_EQ(Sorted(out), (std::vector<PointId>{1, 2, 3, 4}));

  out.clear();
  index.QueryContained(Subspace{3}, &out);
  EXPECT_TRUE(out.empty());
}

TEST(SubsetIndexTest, QueryAndQueryContainedPartitionOnExactMatch) {
  // A stored subspace equal to the query is returned by both queries.
  SubsetIndex index(5);
  index.Add(9, Subspace{1, 3});
  std::vector<PointId> sup, sub;
  index.Query(Subspace{1, 3}, &sup);
  index.QueryContained(Subspace{1, 3}, &sub);
  EXPECT_EQ(sup, std::vector<PointId>{9});
  EXPECT_EQ(sub, std::vector<PointId>{9});
}

// Property test: QueryContained agrees with brute force.
class SubsetIndexContainedPropertyTest
    : public ::testing::TestWithParam<int> {};

TEST_P(SubsetIndexContainedPropertyTest, AgreesWithBruteForce) {
  std::mt19937_64 rng(GetParam());
  const Dim d = 2 + static_cast<Dim>(rng() % 14);
  const std::uint64_t space = Subspace::Full(d).bits();
  SubsetIndex index(d);
  std::vector<std::pair<PointId, Subspace>> stored;
  for (PointId id = 0; id < 300; ++id) {
    Subspace mask(rng() & space);
    if (mask.empty()) mask = Subspace::Full(d);
    index.Add(id, mask);
    stored.emplace_back(id, mask);
  }
  for (int q = 0; q < 100; ++q) {
    Subspace query(rng() & space);
    std::vector<PointId> got;
    index.QueryContained(query, &got);
    std::vector<PointId> expected;
    for (const auto& [id, mask] : stored) {
      if (mask.IsSubsetOf(query)) expected.push_back(id);
    }
    ASSERT_EQ(Sorted(got), Sorted(expected))
        << "d=" << d << " query=" << query.ToString();
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SubsetIndexContainedPropertyTest,
                         ::testing::Values(21, 22, 23, 24, 25, 26));

TEST(SubsetIndexTest, RemoveDeletesExactlyOneOccurrence) {
  SubsetIndex index(4);
  index.Add(1, Subspace{0, 2});
  index.Add(2, Subspace{0, 2});
  EXPECT_TRUE(index.Remove(1, Subspace{0, 2}));
  EXPECT_EQ(index.num_points(), 1u);
  std::vector<PointId> out;
  index.Query(Subspace{0, 2}, &out);
  EXPECT_EQ(out, std::vector<PointId>{2});
  // Removing again fails; removing with the wrong subspace fails.
  EXPECT_FALSE(index.Remove(1, Subspace{0, 2}));
  EXPECT_FALSE(index.Remove(2, Subspace{0}));
  EXPECT_EQ(index.num_points(), 1u);
}

TEST(SubsetIndexTest, RemoveFromUnknownPathIsRejected) {
  SubsetIndex index(4);
  index.Add(1, Subspace{0});
  EXPECT_FALSE(index.Remove(1, Subspace{1, 2}));
  EXPECT_EQ(index.num_points(), 1u);
}

TEST(SubsetIndexTest, AddAfterRemoveWorks) {
  SubsetIndex index(6);
  index.Add(5, Subspace{1, 4});
  ASSERT_TRUE(index.Remove(5, Subspace{1, 4}));
  index.Add(6, Subspace{1, 4});
  std::vector<PointId> out;
  index.Query(Subspace{1, 4}, &out);
  EXPECT_EQ(out, std::vector<PointId>{6});
}

TEST(SubsetIndexTest, QueryNeverReturnsDuplicates) {
  std::mt19937_64 rng(77);
  const Dim d = 10;
  SubsetIndex index(d);
  for (PointId id = 0; id < 200; ++id) {
    Subspace mask(rng() & Subspace::Full(d).bits());
    if (mask.empty()) mask = Subspace::Single(0);
    index.Add(id, mask);
  }
  for (int q = 0; q < 50; ++q) {
    Subspace query(rng() & Subspace::Full(d).bits());
    std::vector<PointId> got;
    index.Query(query, &got);
    auto sorted = Sorted(got);
    EXPECT_TRUE(std::adjacent_find(sorted.begin(), sorted.end()) ==
                sorted.end());
  }
}

// --- Empty-index and single-pivot edge cases (ISSUE 2 satellite). ---

TEST(SubsetIndexEdgeTest, EmptyIndexAnswersEveryQueryShape) {
  SubsetIndex index(4);
  std::vector<PointId> out;
  std::uint64_t nodes = 0;
  index.Query(Subspace{}, &out, &nodes);          // weakest probe
  index.Query(Subspace::Full(4), &out, &nodes);   // strongest probe
  index.QueryContained(Subspace{}, &out, &nodes);
  index.QueryContained(Subspace::Full(4), &out, &nodes);
  EXPECT_TRUE(out.empty());
  EXPECT_EQ(index.num_nodes(), 0u);
  EXPECT_EQ(index.num_points(), 0u);
  EXPECT_GE(nodes, 4u);  // each query touches at least the root
}

TEST(SubsetIndexEdgeTest, RemoveOnEmptyIndexReturnsFalse) {
  SubsetIndex index(4);
  EXPECT_FALSE(index.Remove(0, Subspace{0, 1}));
  EXPECT_FALSE(index.Remove(0, Subspace{}));
  EXPECT_EQ(index.num_points(), 0u);
}

TEST(SubsetIndexEdgeTest, MergeFromEmptyIsANoOp) {
  SubsetIndex index(5);
  index.Add(3, Subspace{0, 2});
  SubsetIndex empty(5);
  index.MergeFrom(std::move(empty));
  EXPECT_EQ(index.num_points(), 1u);
  std::vector<PointId> out;
  index.Query(Subspace{0}, &out);
  EXPECT_EQ(out, std::vector<PointId>{3});
}

TEST(SubsetIndexEdgeTest, SinglePivotIsReturnedByEveryQuery) {
  // A Merge pivot is registered as an always-candidate: the root-stored
  // id must come back for every probe, from empty to full.
  SubsetIndex index(6);
  index.AddAlwaysCandidate(42);
  EXPECT_EQ(index.num_points(), 1u);
  EXPECT_EQ(index.num_nodes(), 0u);  // root is not counted
  for (std::uint64_t bits = 0; bits < 64; ++bits) {
    std::vector<PointId> out;
    index.Query(Subspace(bits), &out);
    EXPECT_EQ(out, std::vector<PointId>{42}) << "bits=" << bits;
  }
}

TEST(SubsetIndexEdgeTest, SingleStoredSubspaceFiltersByQuerySide) {
  SubsetIndex index(4);
  index.Add(7, Subspace{1, 3});
  std::vector<PointId> out;
  index.Query(Subspace{1}, &out);  // {1} subset of {1,3}: hit
  EXPECT_EQ(out, std::vector<PointId>{7});
  out.clear();
  index.Query(Subspace{0}, &out);  // {0} not subset: miss
  EXPECT_TRUE(out.empty());
  out.clear();
  index.Query(Subspace{1, 3}, &out);  // exact: hit
  EXPECT_EQ(out, std::vector<PointId>{7});
  out.clear();
  index.Query(Subspace{0, 1, 3}, &out);  // proper superset: miss
  EXPECT_TRUE(out.empty());
  out.clear();
  index.QueryContained(Subspace{0, 1, 3}, &out);  // superset probe: hit
  EXPECT_EQ(out, std::vector<PointId>{7});
  out.clear();
  index.QueryContained(Subspace{1}, &out);  // subset probe: miss
  EXPECT_TRUE(out.empty());
}

TEST(SubsetIndexEdgeTest, SingleEntryRemoveRoundTrip) {
  SubsetIndex index(4);
  index.Add(9, Subspace{0, 2});
  EXPECT_FALSE(index.Remove(9, Subspace{0, 1}));  // wrong subspace
  EXPECT_FALSE(index.Remove(8, Subspace{0, 2}));  // wrong id
  EXPECT_TRUE(index.Remove(9, Subspace{0, 2}));
  EXPECT_EQ(index.num_points(), 0u);
  std::vector<PointId> out;
  index.Query(Subspace{}, &out);
  EXPECT_TRUE(out.empty());
  // Removing the last entry of a path reclaims the emptied nodes, so a
  // long add/remove stream cannot leak tree structure.
  EXPECT_EQ(index.num_nodes(), 0u);
  EXPECT_EQ(index.Compact(), 0u);  // eager reclamation left nothing behind
  index.Add(9, Subspace{0, 2});
  EXPECT_EQ(index.num_nodes(), 2u);  // reversed path {1,3} re-created
  EXPECT_EQ(index.num_points(), 1u);
}

TEST(SubsetIndexReclaimTest, RemoveReclaimsOnlyUnsharedNodes) {
  SubsetIndex index(8);
  // Reversed paths {0,1} and {0,2} share the prefix node 0.
  index.Add(1, Subspace({0, 1}).Complement(8));
  index.Add(2, Subspace({0, 2}).Complement(8));
  ASSERT_EQ(index.num_nodes(), 3u);
  EXPECT_TRUE(index.Remove(1, Subspace({0, 1}).Complement(8)));
  // Node 0->1 dies with its last point; the shared prefix 0 and node
  // 0->2 stay alive.
  EXPECT_EQ(index.num_nodes(), 2u);
  EXPECT_TRUE(index.Remove(2, Subspace({0, 2}).Complement(8)));
  EXPECT_EQ(index.num_nodes(), 0u);
  EXPECT_EQ(index.num_points(), 0u);
}

TEST(SubsetIndexReclaimTest, RemoveKeepsNodesWithRemainingPoints) {
  SubsetIndex index(6);
  index.Add(1, Subspace{2, 4});
  index.Add(2, Subspace{2, 4});  // same path, two points
  const std::size_t nodes = index.num_nodes();
  EXPECT_TRUE(index.Remove(1, Subspace{2, 4}));
  EXPECT_EQ(index.num_nodes(), nodes);  // node still holds id 2
  EXPECT_TRUE(index.Remove(2, Subspace{2, 4}));
  EXPECT_EQ(index.num_nodes(), 0u);
}

TEST(SubsetIndexReclaimTest, RemoveKeepsInteriorNodesWithLiveChildren) {
  SubsetIndex index(8);
  // Reversed path {1} is a prefix of reversed path {1,3}.
  index.Add(1, Subspace({1}).Complement(8));
  index.Add(2, Subspace({1, 3}).Complement(8));
  ASSERT_EQ(index.num_nodes(), 2u);
  // Removing the interior entry must not drop the node: its child is
  // still reachable.
  EXPECT_TRUE(index.Remove(1, Subspace({1}).Complement(8)));
  EXPECT_EQ(index.num_nodes(), 2u);
  std::vector<PointId> out;
  index.Query(Subspace{}, &out);
  EXPECT_EQ(out, std::vector<PointId>{2});
  EXPECT_TRUE(index.Remove(2, Subspace({1, 3}).Complement(8)));
  EXPECT_EQ(index.num_nodes(), 0u);
}

TEST(SubsetIndexReclaimTest, InterleavedOpsKeepAccountingAndNeverResurrect) {
  // Random Add/Remove/MergeFrom/QueryContained interleaving, with an
  // exact node-count oracle (distinct non-empty prefixes of the live
  // reversed paths) and the guarantee that a removed id never reappears
  // in either query direction. Runs the SKYLINE_CHECKS shadow oracle in
  // checked builds.
  const Dim d = 10;
  const std::uint64_t space = Subspace::Full(d).bits();
  std::mt19937_64 rng(97);
  SubsetIndex index(d);
  std::vector<std::pair<PointId, std::uint64_t>> live;
  PointId next_id = 0;

  const auto expected_nodes = [&] {
    std::set<std::uint64_t> prefixes;
    for (const auto& [id, bits] : live) {
      (void)id;
      std::uint64_t prefix = 0;
      Subspace(bits).Complement(d).ForEachDim([&](Dim dim) {
        prefix |= std::uint64_t{1} << dim;
        prefixes.insert(prefix);
      });
    }
    return prefixes.size();
  };

  for (int step = 0; step < 600; ++step) {
    switch (rng() % 4) {
      case 0: {  // Add
        const Subspace mask(rng() & space);
        index.Add(next_id, mask);
        live.emplace_back(next_id, mask.bits());
        ++next_id;
        break;
      }
      case 1: {  // Remove a live entry
        if (live.empty()) break;
        const std::size_t pick = rng() % live.size();
        ASSERT_TRUE(index.Remove(live[pick].first, Subspace(live[pick].second)));
        live.erase(live.begin() + static_cast<std::ptrdiff_t>(pick));
        break;
      }
      case 2: {  // MergeFrom a small batch built on the side
        SubsetIndex batch(d);
        const int batch_size = static_cast<int>(rng() % 4);
        for (int i = 0; i < batch_size; ++i) {
          const Subspace mask(rng() & space);
          batch.Add(next_id, mask);
          live.emplace_back(next_id, mask.bits());
          ++next_id;
        }
        index.MergeFrom(std::move(batch));
        break;
      }
      case 3: {  // QueryContained vs linear subset scan
        const Subspace probe(rng() & space);
        std::vector<PointId> got, want;
        index.QueryContained(probe, &got);
        for (const auto& [id, bits] : live) {
          if (Subspace(bits).IsSubsetOf(probe)) want.push_back(id);
        }
        ASSERT_EQ(Sorted(got), Sorted(want)) << "step " << step;
        break;
      }
    }
    ASSERT_EQ(index.num_points(), live.size()) << "step " << step;
    ASSERT_EQ(index.num_nodes(), expected_nodes()) << "step " << step;
  }

  // Drain everything: removed ids must never come back, node count must
  // reach exactly zero (full reclamation).
  while (!live.empty()) {
    const auto [id, bits] = live.back();
    live.pop_back();
    ASSERT_TRUE(index.Remove(id, Subspace(bits)));
    std::vector<PointId> got;
    index.Query(Subspace{}, &got);  // weakest probe returns every stored id
    EXPECT_EQ(std::count(got.begin(), got.end(), id),
              static_cast<std::ptrdiff_t>(
                  std::count_if(live.begin(), live.end(),
                                [&](const auto& e) { return e.first == id; })));
  }
  EXPECT_EQ(index.num_nodes(), 0u);
  EXPECT_EQ(index.num_points(), 0u);
  EXPECT_EQ(index.Compact(), 0u);
}

}  // namespace
}  // namespace skyline

