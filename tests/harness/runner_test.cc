#include "src/harness/runner.h"

#include <gtest/gtest.h>

#include "src/algo/registry.h"
#include "src/core/verify.h"
#include "src/data/generator.h"

namespace skyline {
namespace {

TEST(RunnerTest, ComputesPaperMetrics) {
  Dataset data = Generate(DataType::kUniformIndependent, 500, 4, 3);
  auto algo = MakeAlgorithm("sfs");
  RunResult result = RunAlgorithm(*algo, data, 2);
  EXPECT_GT(result.mean_dominance_tests, 0.0);
  EXPECT_GE(result.elapsed_ms, 0.0);
  EXPECT_EQ(result.skyline_size, result.skyline.size());
  EXPECT_TRUE(IsSkylineOf(data, result.skyline));
  // mean DT = total tests / N, per Section 6.
  EXPECT_DOUBLE_EQ(
      result.mean_dominance_tests,
      static_cast<double>(result.stats.dominance_tests) / data.num_points());
}

TEST(RunnerTest, AtLeastOneRun) {
  Dataset data = Generate(DataType::kCorrelated, 100, 3, 1);
  auto algo = MakeAlgorithm("bnl");
  RunResult result = RunAlgorithm(*algo, data, 0);  // clamped to 1
  EXPECT_EQ(result.skyline_size, ReferenceSkyline(data).size());
}

TEST(RunnerTest, DeterministicAcrossRuns) {
  Dataset data = Generate(DataType::kAntiCorrelated, 400, 5, 9);
  auto algo = MakeAlgorithm("sdi-subset");
  RunResult a = RunAlgorithm(*algo, data, 1);
  RunResult b = RunAlgorithm(*algo, data, 3);
  EXPECT_EQ(a.skyline, b.skyline);
  EXPECT_EQ(a.stats.dominance_tests, b.stats.dominance_tests);
}

}  // namespace
}  // namespace skyline
