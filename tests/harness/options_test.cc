#include "src/harness/options.h"

#include <gtest/gtest.h>

#include <cstdlib>

namespace skyline {
namespace {

BenchOptions ParseArgs(std::vector<const char*> args) {
  args.insert(args.begin(), "bench");
  return BenchOptions::Parse(static_cast<int>(args.size()),
                             const_cast<char**>(args.data()));
}

class OptionsTest : public ::testing::Test {
 protected:
  void SetUp() override { unsetenv("SKYLINE_FULL"); }
  void TearDown() override { unsetenv("SKYLINE_FULL"); }
};

TEST_F(OptionsTest, DefaultsToReducedScale) {
  BenchOptions opts = ParseArgs({});
  EXPECT_FALSE(opts.full);
  EXPECT_EQ(opts.EffectiveRuns(), 3);
  EXPECT_EQ(opts.seed, 42u);
}

TEST_F(OptionsTest, FullFlag) {
  BenchOptions opts = ParseArgs({"--full"});
  EXPECT_TRUE(opts.full);
  EXPECT_EQ(opts.EffectiveRuns(), 10);
}

TEST_F(OptionsTest, EnvironmentVariableEnablesFull) {
  setenv("SKYLINE_FULL", "1", 1);
  EXPECT_TRUE(ParseArgs({}).full);
  setenv("SKYLINE_FULL", "0", 1);
  EXPECT_FALSE(ParseArgs({}).full);
}

TEST_F(OptionsTest, ReducedFlagOverridesEnvironment) {
  setenv("SKYLINE_FULL", "1", 1);
  EXPECT_FALSE(ParseArgs({"--reduced"}).full);
}

TEST_F(OptionsTest, ExplicitRunsAndSeed) {
  BenchOptions opts = ParseArgs({"--runs=7", "--seed=99"});
  EXPECT_EQ(opts.EffectiveRuns(), 7);
  EXPECT_EQ(opts.seed, 99u);
}

TEST_F(OptionsTest, UnknownArgumentsIgnored) {
  BenchOptions opts = ParseArgs({"--whatever", "--full"});
  EXPECT_TRUE(opts.full);
}

TEST_F(OptionsTest, SweepsScaleWithFullFlag) {
  BenchOptions reduced = ParseArgs({});
  BenchOptions full = ParseArgs({"--full"});
  EXPECT_LT(reduced.DimensionSweep().size(), full.DimensionSweep().size());
  EXPECT_EQ(full.DimensionSweep().back(), 24u);
  EXPECT_EQ(full.CardinalitySweep().back(), 1000000u);
  EXPECT_EQ(full.SweepCardinality(), 200000u);
  EXPECT_LT(reduced.SweepCardinality(), full.SweepCardinality());
}

}  // namespace
}  // namespace skyline
