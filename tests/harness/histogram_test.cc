#include "src/harness/histogram.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <limits>
#include <sstream>
#include <thread>
#include <vector>

namespace skyline {
namespace {

TEST(HistogramTest, CountsMasksBySize) {
  std::vector<Subspace> masks = {
      Subspace{0},       Subspace{1},    Subspace{0, 1},
      Subspace{0, 1, 2}, Subspace{2, 3}, Subspace{},
  };
  auto hist = SubspaceSizeHistogram(masks, 4);
  ASSERT_EQ(hist.size(), 5u);
  EXPECT_EQ(hist[0], 1u);
  EXPECT_EQ(hist[1], 2u);
  EXPECT_EQ(hist[2], 2u);
  EXPECT_EQ(hist[3], 1u);
  EXPECT_EQ(hist[4], 0u);
}

TEST(HistogramTest, EmptyMaskList) {
  auto hist = SubspaceSizeHistogram({}, 3);
  EXPECT_EQ(hist, (std::vector<std::size_t>{0, 0, 0, 0}));
}

TEST(HistogramTest, PrintShowsCountsAndTitle) {
  std::ostringstream out;
  PrintHistogram(out, "Distribution", {0, 5, 100, 0});
  const std::string text = out.str();
  EXPECT_NE(text.find("Distribution"), std::string::npos);
  EXPECT_NE(text.find("size  1"), std::string::npos);
  EXPECT_NE(text.find("100"), std::string::npos);
  // size 0 bin with zero count is suppressed.
  EXPECT_EQ(text.find("size  0"), std::string::npos);
}

TEST(HistogramTest, BarsScaleWithCounts) {
  std::ostringstream out;
  PrintHistogram(out, "t", {0, 1, 1000});
  std::istringstream lines(out.str());
  std::string line, line1, line2;
  std::getline(lines, line);  // title
  std::getline(lines, line1);
  std::getline(lines, line2);
  const auto hashes = [](const std::string& s) {
    return std::count(s.begin(), s.end(), '#');
  };
  EXPECT_GT(hashes(line2), hashes(line1));
}

TEST(LatencyHistogramTest, BucketOfEdges) {
  // Bucket 0 holds 0 and 1 ns; bucket b otherwise holds
  // [2^b, 2^(b+1) - 1], i.e. boundaries move at exact powers of two.
  EXPECT_EQ(LatencyHistogram::BucketOf(0), 0);
  EXPECT_EQ(LatencyHistogram::BucketOf(1), 0);
  EXPECT_EQ(LatencyHistogram::BucketOf(2), 1);
  EXPECT_EQ(LatencyHistogram::BucketOf(3), 1);
  EXPECT_EQ(LatencyHistogram::BucketOf(4), 2);
  EXPECT_EQ(LatencyHistogram::BucketOf(1023), 9);
  EXPECT_EQ(LatencyHistogram::BucketOf(1024), 10);
  // Everything at and beyond 2^(kBuckets-1) saturates into the top
  // bucket instead of indexing out of range.
  constexpr int kTop = LatencyHistogram::kBuckets - 1;
  EXPECT_EQ(LatencyHistogram::BucketOf(std::uint64_t{1} << kTop), kTop);
  EXPECT_EQ(
      LatencyHistogram::BucketOf(std::numeric_limits<std::uint64_t>::max()),
      kTop);
}

TEST(LatencyHistogramTest, EmptySnapshotReportsZero) {
  const LatencyHistogram hist;
  const auto snap = hist.Snap();
  EXPECT_EQ(snap.total, 0u);
  EXPECT_EQ(snap.PercentileNanos(0), 0u);
  EXPECT_EQ(snap.PercentileNanos(50), 0u);
  EXPECT_EQ(snap.PercentileNanos(100), 0u);
  std::ostringstream out;
  PrintLatencySummary(out, "empty", snap);
  EXPECT_EQ(out.str(), "empty: n=0\n");
}

TEST(LatencyHistogramTest, SingleBucketOwnsEveryPercentile) {
  LatencyHistogram hist;
  for (int i = 0; i < 7; ++i) hist.Record(600);  // bucket 9: [512, 1023]
  const auto snap = hist.Snap();
  EXPECT_EQ(snap.total, 7u);
  // All mass in one bucket: every percentile reports its upper bound.
  const std::uint64_t bound = LatencyHistogram::BucketUpperNanos(9);
  EXPECT_EQ(bound, 1023u);
  EXPECT_EQ(snap.PercentileNanos(0), bound);
  EXPECT_EQ(snap.PercentileNanos(50), bound);
  EXPECT_EQ(snap.PercentileNanos(99), bound);
  EXPECT_EQ(snap.PercentileNanos(100), bound);
  // Out-of-range percentiles clamp instead of misbehaving.
  EXPECT_EQ(snap.PercentileNanos(-5), bound);
  EXPECT_EQ(snap.PercentileNanos(250), bound);
}

TEST(LatencyHistogramTest, PercentilesSplitAcrossBuckets) {
  LatencyHistogram hist;
  for (int i = 0; i < 90; ++i) hist.Record(100);    // bucket 6: [64, 127]
  for (int i = 0; i < 10; ++i) hist.Record(50000);  // bucket 15
  const auto snap = hist.Snap();
  EXPECT_EQ(snap.total, 100u);
  EXPECT_EQ(snap.PercentileNanos(50), LatencyHistogram::BucketUpperNanos(6));
  EXPECT_EQ(snap.PercentileNanos(90), LatencyHistogram::BucketUpperNanos(6));
  EXPECT_EQ(snap.PercentileNanos(91), LatencyHistogram::BucketUpperNanos(15));
  EXPECT_EQ(snap.PercentileNanos(100),
            LatencyHistogram::BucketUpperNanos(15));
}

TEST(LatencyHistogramTest, SaturatingTopBucket) {
  LatencyHistogram hist;
  hist.Record(std::numeric_limits<std::uint64_t>::max());
  const auto snap = hist.Snap();
  constexpr int kTop = LatencyHistogram::kBuckets - 1;
  EXPECT_EQ(snap.counts[kTop], 1u);
  EXPECT_EQ(snap.total, 1u);
  // The top bucket reports its nominal upper bound even though the
  // recorded sample exceeds it — percentiles over-estimate, but stay
  // finite and ordered.
  EXPECT_EQ(snap.PercentileNanos(100),
            LatencyHistogram::BucketUpperNanos(kTop));
}

TEST(LatencyHistogramTest, NonFinitePercentileActsAsMax) {
  // A NaN or infinite p used to slide past std::clamp (NaN compares
  // false against everything) and hit an undefined float-to-int cast.
  // The pinned contract: non-finite p is treated as p == 100.
  LatencyHistogram hist;
  for (int i = 0; i < 5; ++i) hist.Record(100);    // bucket 6
  for (int i = 0; i < 5; ++i) hist.Record(50000);  // bucket 15
  const auto snap = hist.Snap();
  const std::uint64_t max_bound = LatencyHistogram::BucketUpperNanos(15);
  EXPECT_EQ(snap.PercentileNanos(std::numeric_limits<double>::quiet_NaN()),
            max_bound);
  EXPECT_EQ(snap.PercentileNanos(std::numeric_limits<double>::infinity()),
            max_bound);
  EXPECT_EQ(snap.PercentileNanos(-std::numeric_limits<double>::infinity()),
            max_bound);
  // The empty histogram wins over the non-finite rule: still 0.
  const auto empty = LatencyHistogram().Snap();
  EXPECT_EQ(empty.PercentileNanos(std::numeric_limits<double>::quiet_NaN()),
            0u);
}

TEST(LatencyHistogramTest, PercentileZeroIsSmallestNonEmptyBucket) {
  LatencyHistogram hist;
  hist.Record(50000);  // bucket 15 only — buckets below it are empty
  hist.Record(70000);
  const auto snap = hist.Snap();
  // p == 0 must skip empty low buckets and land on the first occupied
  // one (the rank-1 sample's bucket), not report bucket 0's bound.
  EXPECT_EQ(snap.PercentileNanos(0), LatencyHistogram::BucketUpperNanos(15));
  EXPECT_EQ(snap.PercentileNanos(100), LatencyHistogram::BucketUpperNanos(16));
}

TEST(LatencyHistogramTest, PercentileIsAlwaysSomeBucketBound) {
  // Fuzz the contract's range guarantee: whatever p is thrown at a
  // non-empty snapshot, the result is BucketUpperNanos(b) of some
  // occupied bucket.
  LatencyHistogram hist;
  hist.Record(3);
  hist.Record(900);
  hist.Record(1 << 20);
  const auto snap = hist.Snap();
  const std::vector<std::uint64_t> valid = {
      LatencyHistogram::BucketUpperNanos(1),
      LatencyHistogram::BucketUpperNanos(9),
      LatencyHistogram::BucketUpperNanos(20),
  };
  for (double p : {-1e9, -0.1, 0.0, 0.5, 33.3, 66.7, 99.9, 100.0, 1e9}) {
    const std::uint64_t result = snap.PercentileNanos(p);
    EXPECT_NE(std::find(valid.begin(), valid.end(), result), valid.end())
        << "p=" << p << " returned " << result;
  }
}

TEST(LatencyHistogramTest, ConcurrentRecordAndSnapshot) {
  // Recorders and a snapshotter run concurrently; the TSan preset runs
  // this test, so any non-atomic counter access would be flagged. Mid-
  // flight snapshots may see partial totals but must never exceed the
  // final count or shrink between observations (counters only grow).
  LatencyHistogram hist;
  constexpr int kThreads = 4;
  constexpr int kSamplesPerThread = 20000;
  std::vector<std::thread> recorders;
  recorders.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    recorders.emplace_back([&hist, t] {
      for (int i = 0; i < kSamplesPerThread; ++i) {
        hist.Record(static_cast<std::uint64_t>(t) * 1000 + 1);
      }
    });
  }
  std::uint64_t last_total = 0;
  while (last_total < std::uint64_t{kThreads} * kSamplesPerThread) {
    const auto snap = hist.Snap();
    ASSERT_GE(snap.total, last_total);
    ASSERT_LE(snap.total, std::uint64_t{kThreads} * kSamplesPerThread);
    last_total = snap.total;
  }
  for (std::thread& thread : recorders) thread.join();
  const auto final_snap = hist.Snap();
  EXPECT_EQ(final_snap.total, std::uint64_t{kThreads} * kSamplesPerThread);
}

}  // namespace
}  // namespace skyline
