#include "src/harness/histogram.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <sstream>

namespace skyline {
namespace {

TEST(HistogramTest, CountsMasksBySize) {
  std::vector<Subspace> masks = {
      Subspace{0},       Subspace{1},    Subspace{0, 1},
      Subspace{0, 1, 2}, Subspace{2, 3}, Subspace{},
  };
  auto hist = SubspaceSizeHistogram(masks, 4);
  ASSERT_EQ(hist.size(), 5u);
  EXPECT_EQ(hist[0], 1u);
  EXPECT_EQ(hist[1], 2u);
  EXPECT_EQ(hist[2], 2u);
  EXPECT_EQ(hist[3], 1u);
  EXPECT_EQ(hist[4], 0u);
}

TEST(HistogramTest, EmptyMaskList) {
  auto hist = SubspaceSizeHistogram({}, 3);
  EXPECT_EQ(hist, (std::vector<std::size_t>{0, 0, 0, 0}));
}

TEST(HistogramTest, PrintShowsCountsAndTitle) {
  std::ostringstream out;
  PrintHistogram(out, "Distribution", {0, 5, 100, 0});
  const std::string text = out.str();
  EXPECT_NE(text.find("Distribution"), std::string::npos);
  EXPECT_NE(text.find("size  1"), std::string::npos);
  EXPECT_NE(text.find("100"), std::string::npos);
  // size 0 bin with zero count is suppressed.
  EXPECT_EQ(text.find("size  0"), std::string::npos);
}

TEST(HistogramTest, BarsScaleWithCounts) {
  std::ostringstream out;
  PrintHistogram(out, "t", {0, 1, 1000});
  std::istringstream lines(out.str());
  std::string line, line1, line2;
  std::getline(lines, line);  // title
  std::getline(lines, line1);
  std::getline(lines, line2);
  const auto hashes = [](const std::string& s) {
    return std::count(s.begin(), s.end(), '#');
  };
  EXPECT_GT(hashes(line2), hashes(line1));
}

}  // namespace
}  // namespace skyline
