#include "src/harness/table.h"

#include <gtest/gtest.h>

#include <sstream>

namespace skyline {
namespace {

TEST(TextTableTest, PrintsHeaderAndRows) {
  TextTable table({"Algo", "DT", "RT"});
  table.AddRow({"sfs", "12.5", "3.2"});
  table.AddRow({"sdi", "1.25", "0.8"});
  std::ostringstream out;
  table.Print(out, "My experiment");
  const std::string text = out.str();
  EXPECT_NE(text.find("My experiment"), std::string::npos);
  EXPECT_NE(text.find("Algo"), std::string::npos);
  EXPECT_NE(text.find("sfs"), std::string::npos);
  EXPECT_NE(text.find("1.25"), std::string::npos);
}

TEST(TextTableTest, ShortRowsArePadded) {
  TextTable table({"A", "B", "C"});
  table.AddRow({"x"});
  std::ostringstream out;
  table.Print(out, "t");
  EXPECT_NE(out.str().find('x'), std::string::npos);
}

TEST(TextTableTest, ColumnsAreAligned) {
  TextTable table({"Name", "V"});
  table.AddRow({"a", "1"});
  table.AddRow({"longer-name", "2"});
  std::ostringstream out;
  table.Print(out, "t");
  std::istringstream lines(out.str());
  std::string line;
  std::size_t v_col = std::string::npos;
  while (std::getline(lines, line)) {
    const auto pos1 = line.find('1');
    const auto pos2 = line.find('2');
    if (pos1 != std::string::npos) v_col = pos1;
    if (pos2 != std::string::npos) {
      EXPECT_EQ(pos2, v_col);
    }
  }
}

TEST(TextTableTest, FormatNumberSixSignificantDigits) {
  EXPECT_EQ(TextTable::FormatNumber(23648.61), "23648.6");
  EXPECT_EQ(TextTable::FormatNumber(3.668361), "3.66836");
  EXPECT_EQ(TextTable::FormatNumber(0.0), "0");
  EXPECT_EQ(TextTable::FormatNumber(100.0), "100");
}

TEST(TextTableTest, FormatGainMatchesPaperConvention) {
  EXPECT_EQ(TextTable::FormatGain(23648.6, 4884.64), "x 4.84");
  EXPECT_EQ(TextTable::FormatGain(1.0, 2.0), "-");   // no gain
  EXPECT_EQ(TextTable::FormatGain(2.0, 2.0), "-");   // exactly equal
  EXPECT_EQ(TextTable::FormatGain(1.0, 0.0), "-");   // degenerate
}

}  // namespace
}  // namespace skyline
