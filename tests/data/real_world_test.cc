#include "src/data/real_world.h"

#include <gtest/gtest.h>

#include <unordered_set>

namespace skyline {
namespace {

// Building the full-size surrogates is slow; tests that need content use
// a shared fixture built once.
class RealWorldTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    nba_ = new Dataset(NbaSurrogate());
  }
  static void TearDownTestSuite() {
    delete nba_;
    nba_ = nullptr;
  }
  static Dataset* nba_;
};

Dataset* RealWorldTest::nba_ = nullptr;

TEST_F(RealWorldTest, CatalogMatchesPaperMetadata) {
  const auto catalog = RealDatasetCatalog();
  ASSERT_EQ(catalog.size(), 3u);
  EXPECT_EQ(catalog[0].name, "house");
  EXPECT_EQ(catalog[0].cardinality, 127931u);
  EXPECT_EQ(catalog[0].dimensionality, 6u);
  EXPECT_EQ(catalog[0].sigma, 4);
  EXPECT_EQ(catalog[1].name, "nba");
  EXPECT_EQ(catalog[1].cardinality, 17264u);
  EXPECT_EQ(catalog[1].dimensionality, 8u);
  EXPECT_EQ(catalog[1].sigma, 2);
  EXPECT_EQ(catalog[2].name, "weather");
  EXPECT_EQ(catalog[2].cardinality, 566268u);
  EXPECT_EQ(catalog[2].dimensionality, 15u);
  EXPECT_EQ(catalog[2].sigma, 3);
}

TEST_F(RealWorldTest, NbaShapeMatchesCatalog) {
  EXPECT_EQ(nba_->num_points(), 17264u);
  EXPECT_EQ(nba_->num_dims(), 8u);
}

TEST_F(RealWorldTest, NbaValuesAreNonNegativeIntegers) {
  for (PointId p = 0; p < nba_->num_points(); ++p) {
    for (Dim i = 0; i < nba_->num_dims(); ++i) {
      const Value v = nba_->at(p, i);
      ASSERT_GE(v, 0.0);
      ASSERT_EQ(v, static_cast<Value>(static_cast<long long>(v)))
          << "box-score attributes are integral";
    }
  }
}

TEST_F(RealWorldTest, NbaHasHeavyDuplicateDimensionValues) {
  // The paper's Section 6.3 discussion depends on duplicates: the number
  // of distinct values per dimension must be tiny relative to N.
  for (Dim i = 0; i < nba_->num_dims(); ++i) {
    std::unordered_set<Value> distinct;
    for (PointId p = 0; p < nba_->num_points(); ++p) {
      distinct.insert(nba_->at(p, i));
    }
    EXPECT_LE(distinct.size(), 64u) << "dimension " << i;
  }
}

TEST_F(RealWorldTest, NbaIsDeterministic) {
  Dataset again = NbaSurrogate();
  EXPECT_EQ(nba_->values(), again.values());
}

TEST_F(RealWorldTest, MakeRealDatasetByName) {
  Dataset byname = MakeRealDataset("nba");
  EXPECT_EQ(byname.num_points(), nba_->num_points());
  EXPECT_TRUE(MakeRealDataset("unknown").empty());
}

// HOUSE and WEATHER are big; verify shape only (content-level checks run
// in bench_table15_17_real, which builds them anyway).
TEST(RealWorldShapeTest, HouseShape) {
  Dataset house = HouseSurrogate();
  EXPECT_EQ(house.num_points(), 127931u);
  EXPECT_EQ(house.num_dims(), 6u);
}

TEST(RealWorldShapeTest, WeatherShape) {
  Dataset weather = WeatherSurrogate();
  EXPECT_EQ(weather.num_points(), 566268u);
  EXPECT_EQ(weather.num_dims(), 15u);
}

}  // namespace
}  // namespace skyline
