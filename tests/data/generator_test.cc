#include "src/data/generator.h"

#include <gtest/gtest.h>

#include <cmath>

#include "src/core/verify.h"

namespace skyline {
namespace {

TEST(GeneratorTest, ShapeAndRange) {
  for (DataType type : {DataType::kAntiCorrelated, DataType::kCorrelated,
                        DataType::kUniformIndependent}) {
    Dataset data = Generate(type, 500, 6, 7);
    ASSERT_EQ(data.num_points(), 500u);
    ASSERT_EQ(data.num_dims(), 6u);
    for (PointId p = 0; p < data.num_points(); ++p) {
      for (Dim i = 0; i < data.num_dims(); ++i) {
        ASSERT_GE(data.at(p, i), 0.0) << ShortName(type);
        ASSERT_LE(data.at(p, i), 1.0) << ShortName(type);
      }
    }
  }
}

TEST(GeneratorTest, DeterministicBySeed) {
  Dataset a = Generate(DataType::kUniformIndependent, 100, 4, 123);
  Dataset b = Generate(DataType::kUniformIndependent, 100, 4, 123);
  EXPECT_EQ(a.values(), b.values());
  Dataset c = Generate(DataType::kUniformIndependent, 100, 4, 124);
  EXPECT_NE(a.values(), c.values());
}

TEST(GeneratorTest, ZeroPoints) {
  Dataset data = Generate(DataType::kCorrelated, 0, 3, 1);
  EXPECT_TRUE(data.empty());
}

TEST(GeneratorTest, OneDimension) {
  Dataset data = Generate(DataType::kUniformIndependent, 50, 1, 1);
  EXPECT_EQ(data.num_dims(), 1u);
  EXPECT_EQ(ReferenceSkyline(data).size(), 1u);  // unique minimum a.s.
}

/// Pearson correlation of two dimensions over a dataset.
double Correlation(const Dataset& data, Dim a, Dim b) {
  const std::size_t n = data.num_points();
  double ma = 0, mb = 0;
  for (PointId p = 0; p < n; ++p) {
    ma += data.at(p, a);
    mb += data.at(p, b);
  }
  ma /= n;
  mb /= n;
  double cov = 0, va = 0, vb = 0;
  for (PointId p = 0; p < n; ++p) {
    const double da = data.at(p, a) - ma;
    const double db = data.at(p, b) - mb;
    cov += da * db;
    va += da * da;
    vb += db * db;
  }
  return cov / std::sqrt(va * vb);
}

TEST(GeneratorTest, CorrelatedDimensionsArePositivelyCorrelated) {
  Dataset data = Generate(DataType::kCorrelated, 5000, 4, 99);
  for (Dim i = 0; i < 4; ++i) {
    for (Dim j = i + 1; j < 4; ++j) {
      EXPECT_GT(Correlation(data, i, j), 0.5) << i << "," << j;
    }
  }
}

TEST(GeneratorTest, AntiCorrelatedDimensionsAreNegativelyCorrelated) {
  Dataset data = Generate(DataType::kAntiCorrelated, 5000, 4, 99);
  double mean_corr = 0;
  int pairs = 0;
  for (Dim i = 0; i < 4; ++i) {
    for (Dim j = i + 1; j < 4; ++j) {
      mean_corr += Correlation(data, i, j);
      ++pairs;
    }
  }
  EXPECT_LT(mean_corr / pairs, -0.05);
}

TEST(GeneratorTest, UniformDimensionsAreUncorrelated) {
  Dataset data = Generate(DataType::kUniformIndependent, 5000, 4, 99);
  for (Dim i = 0; i < 4; ++i) {
    for (Dim j = i + 1; j < 4; ++j) {
      EXPECT_NEAR(Correlation(data, i, j), 0.0, 0.06);
    }
  }
}

TEST(GeneratorTest, SkylineSizeOrderingCoBelowUiBelowAc) {
  // The defining property of the three families (Table 1): for the same
  // (n, d), skyline(CO) << skyline(UI) << skyline(AC).
  const std::size_t n = 2000;
  const Dim d = 6;
  const auto co = ReferenceSkyline(Generate(DataType::kCorrelated, n, d, 5));
  const auto ui =
      ReferenceSkyline(Generate(DataType::kUniformIndependent, n, d, 5));
  const auto ac =
      ReferenceSkyline(Generate(DataType::kAntiCorrelated, n, d, 5));
  EXPECT_LT(co.size() * 4, ui.size());
  EXPECT_LT(ui.size() * 2, ac.size());
}

TEST(GeneratorTest, SkylineGrowsWithDimensionality) {
  const std::size_t n = 2000;
  std::size_t prev = 0;
  for (Dim d : {2u, 4u, 8u}) {
    const auto sky =
        ReferenceSkyline(Generate(DataType::kUniformIndependent, n, d, 5));
    EXPECT_GT(sky.size(), prev);
    prev = sky.size();
  }
}

TEST(GeneratorTest, AntiCorrelatedPointsHaveNearConstantSum) {
  Dataset data = Generate(DataType::kAntiCorrelated, 2000, 8, 3);
  double mean = 0;
  std::vector<double> sums(data.num_points());
  for (PointId p = 0; p < data.num_points(); ++p) {
    double s = 0;
    for (Dim i = 0; i < 8; ++i) s += data.at(p, i);
    sums[p] = s;
    mean += s;
  }
  mean /= data.num_points();
  // Sums concentrate near d/2 = 4.
  EXPECT_NEAR(mean, 4.0, 0.3);
}

TEST(GeneratorTest, ParseDataType) {
  DataType t;
  EXPECT_TRUE(ParseDataType("AC", &t));
  EXPECT_EQ(t, DataType::kAntiCorrelated);
  EXPECT_TRUE(ParseDataType("co", &t));
  EXPECT_EQ(t, DataType::kCorrelated);
  EXPECT_TRUE(ParseDataType("Uniform", &t));
  EXPECT_EQ(t, DataType::kUniformIndependent);
  EXPECT_TRUE(ParseDataType("anti-correlated", &t));
  EXPECT_EQ(t, DataType::kAntiCorrelated);
  EXPECT_FALSE(ParseDataType("bogus", &t));
}

TEST(GeneratorTest, NamesRoundTrip) {
  for (DataType type : {DataType::kAntiCorrelated, DataType::kCorrelated,
                        DataType::kUniformIndependent}) {
    DataType parsed;
    ASSERT_TRUE(ParseDataType(ShortName(type), &parsed));
    EXPECT_EQ(parsed, type);
    ASSERT_TRUE(ParseDataType(ToString(type), &parsed));
    EXPECT_EQ(parsed, type);
  }
}

}  // namespace
}  // namespace skyline
