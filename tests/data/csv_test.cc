#include "src/data/csv.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <sstream>
#include <string>

#include "src/core/verify.h"
#include "src/data/generator.h"

namespace skyline {
namespace {

TEST(CsvTest, WriteProducesOneLinePerPoint) {
  Dataset data = Dataset::FromRows({{1, 2.5}, {3, 4}});
  std::ostringstream out;
  WriteCsv(data, out);
  EXPECT_EQ(out.str(), "1,2.5\n3,4\n");
}

TEST(CsvTest, ReadPlainRows) {
  std::istringstream in("1,2\n3,4\n5,6\n");
  auto data = ReadCsv(in);
  ASSERT_TRUE(data.has_value());
  EXPECT_EQ(data->num_points(), 3u);
  EXPECT_EQ(data->num_dims(), 2u);
  EXPECT_EQ(data->at(2, 1), 6.0);
}

TEST(CsvTest, ReadSkipsHeader) {
  std::istringstream in("price,distance\n10,3\n20,1\n");
  auto data = ReadCsv(in);
  ASSERT_TRUE(data.has_value());
  EXPECT_EQ(data->num_points(), 2u);
  EXPECT_EQ(data->at(0, 0), 10.0);
}

TEST(CsvTest, ReadAcceptsSemicolonsAndWhitespace) {
  std::istringstream in("1;2\n3 4\n5\t6\n");
  auto data = ReadCsv(in);
  ASSERT_TRUE(data.has_value());
  EXPECT_EQ(data->num_points(), 3u);
}

TEST(CsvTest, ReadIgnoresBlankLines) {
  std::istringstream in("1,2\n\n3,4\n   \n");
  auto data = ReadCsv(in);
  ASSERT_TRUE(data.has_value());
  EXPECT_EQ(data->num_points(), 2u);
}

TEST(CsvTest, ReadRejectsRaggedRows) {
  std::istringstream in("1,2\n3,4,5\n");
  EXPECT_FALSE(ReadCsv(in).has_value());
}

TEST(CsvTest, ReadRejectsNonNumericBody) {
  std::istringstream in("1,2\nfoo,bar\n");
  EXPECT_FALSE(ReadCsv(in).has_value());
}

TEST(CsvTest, ReadRejectsEmptyInput) {
  std::istringstream in("");
  EXPECT_FALSE(ReadCsv(in).has_value());
}

TEST(CsvTest, RoundTripPreservesValuesExactly) {
  Dataset data = Generate(DataType::kUniformIndependent, 50, 3, 17);
  std::ostringstream out;
  WriteCsv(data, out);
  std::istringstream in(out.str());
  auto back = ReadCsv(in);
  ASSERT_TRUE(back.has_value());
  ASSERT_EQ(back->num_points(), data.num_points());
  ASSERT_EQ(back->num_dims(), data.num_dims());
  // Shortest-round-trip formatting: every value comes back bit-for-bit.
  EXPECT_EQ(back->values(), data.values());
}

TEST(CsvTest, RoundTripPreservesSkyline) {
  // Differential check of the write->read cycle: a formatting loss of
  // even one ulp can flip a dominance comparison and change the skyline.
  for (const std::uint64_t seed : {7u, 17u, 1234567u}) {
    Dataset data =
        Generate(DataType::kAntiCorrelated, 400, 6, seed);
    std::ostringstream out;
    WriteCsv(data, out);
    std::istringstream in(out.str());
    auto back = ReadCsv(in);
    ASSERT_TRUE(back.has_value());
    EXPECT_TRUE(
        SameIdSet(ReferenceSkyline(data), ReferenceSkyline(*back)))
        << "seed=" << seed;
  }
}

TEST(CsvTest, RoundTripPreservesAwkwardDoubles) {
  // Values that 6-significant-digit formatting visibly corrupts.
  Dataset data = Dataset::FromRows(
      {{0.1, 1.0 / 3.0, 1e-300},
       {1.0000001, 0x1.fffffffffffffp-1, 123456.789012345},
       {-2.2250738585072014e-308, 9007199254740993.0, 1e300}});
  std::ostringstream out;
  WriteCsv(data, out);
  std::istringstream in(out.str());
  auto back = ReadCsv(in);
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(back->values(), data.values());
}

TEST(CsvTest, ReadRejectsNonFiniteValues) {
  for (const char* field : {"nan", "NaN", "inf", "-inf", "INF", "infinity"}) {
    std::istringstream in(std::string("1,2\n3,") + field + "\n");
    std::string error;
    EXPECT_FALSE(ReadCsv(in, &error).has_value()) << field;
    EXPECT_NE(error.find("line 2"), std::string::npos) << error;
    EXPECT_NE(error.find("non-finite"), std::string::npos) << error;
  }
}

TEST(CsvTest, ReadRejectsNonFiniteOnFirstLine) {
  // A numeric-but-non-finite first line is NOT a header: it must fail
  // loudly rather than be silently skipped.
  std::istringstream in("nan,inf\n1,2\n");
  std::string error;
  EXPECT_FALSE(ReadCsv(in, &error).has_value());
  EXPECT_NE(error.find("non-finite"), std::string::npos) << error;
}

TEST(CsvTest, ReadReportsErrorDetails) {
  {
    std::istringstream in("1,2\n3,4,5\n");
    std::string error;
    EXPECT_FALSE(ReadCsv(in, &error).has_value());
    EXPECT_NE(error.find("line 2"), std::string::npos) << error;
  }
  {
    std::istringstream in("price,distance\n1,2\nfoo,4\n");
    std::string error;
    EXPECT_FALSE(ReadCsv(in, &error).has_value());
    EXPECT_NE(error.find("line 3"), std::string::npos) << error;
    EXPECT_NE(error.find("non-numeric"), std::string::npos) << error;
  }
  {
    std::string error;
    EXPECT_FALSE(ReadCsvFile("/nonexistent/path/data.csv", &error)
                     .has_value());
    EXPECT_NE(error.find("cannot open"), std::string::npos) << error;
  }
}

TEST(CsvTest, FileRoundTrip) {
  Dataset data = Dataset::FromRows({{1, 2}, {3, 4}});
  const std::string path = ::testing::TempDir() + "/skyline_csv_test.csv";
  ASSERT_TRUE(WriteCsvFile(data, path));
  auto back = ReadCsvFile(path);
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(back->values(), data.values());
}

TEST(CsvTest, MissingFile) {
  EXPECT_FALSE(ReadCsvFile("/nonexistent/path/data.csv").has_value());
}

}  // namespace
}  // namespace skyline
