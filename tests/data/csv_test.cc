#include "src/data/csv.h"

#include <gtest/gtest.h>

#include <sstream>

#include "src/data/generator.h"

namespace skyline {
namespace {

TEST(CsvTest, WriteProducesOneLinePerPoint) {
  Dataset data = Dataset::FromRows({{1, 2.5}, {3, 4}});
  std::ostringstream out;
  WriteCsv(data, out);
  EXPECT_EQ(out.str(), "1,2.5\n3,4\n");
}

TEST(CsvTest, ReadPlainRows) {
  std::istringstream in("1,2\n3,4\n5,6\n");
  auto data = ReadCsv(in);
  ASSERT_TRUE(data.has_value());
  EXPECT_EQ(data->num_points(), 3u);
  EXPECT_EQ(data->num_dims(), 2u);
  EXPECT_EQ(data->at(2, 1), 6.0);
}

TEST(CsvTest, ReadSkipsHeader) {
  std::istringstream in("price,distance\n10,3\n20,1\n");
  auto data = ReadCsv(in);
  ASSERT_TRUE(data.has_value());
  EXPECT_EQ(data->num_points(), 2u);
  EXPECT_EQ(data->at(0, 0), 10.0);
}

TEST(CsvTest, ReadAcceptsSemicolonsAndWhitespace) {
  std::istringstream in("1;2\n3 4\n5\t6\n");
  auto data = ReadCsv(in);
  ASSERT_TRUE(data.has_value());
  EXPECT_EQ(data->num_points(), 3u);
}

TEST(CsvTest, ReadIgnoresBlankLines) {
  std::istringstream in("1,2\n\n3,4\n   \n");
  auto data = ReadCsv(in);
  ASSERT_TRUE(data.has_value());
  EXPECT_EQ(data->num_points(), 2u);
}

TEST(CsvTest, ReadRejectsRaggedRows) {
  std::istringstream in("1,2\n3,4,5\n");
  EXPECT_FALSE(ReadCsv(in).has_value());
}

TEST(CsvTest, ReadRejectsNonNumericBody) {
  std::istringstream in("1,2\nfoo,bar\n");
  EXPECT_FALSE(ReadCsv(in).has_value());
}

TEST(CsvTest, ReadRejectsEmptyInput) {
  std::istringstream in("");
  EXPECT_FALSE(ReadCsv(in).has_value());
}

TEST(CsvTest, RoundTripPreservesValues) {
  Dataset data = Generate(DataType::kUniformIndependent, 50, 3, 17);
  std::ostringstream out;
  WriteCsv(data, out);
  std::istringstream in(out.str());
  auto back = ReadCsv(in);
  ASSERT_TRUE(back.has_value());
  ASSERT_EQ(back->num_points(), data.num_points());
  ASSERT_EQ(back->num_dims(), data.num_dims());
  for (PointId p = 0; p < data.num_points(); ++p) {
    for (Dim i = 0; i < data.num_dims(); ++i) {
      // Default ostream precision is 6 significant digits.
      EXPECT_NEAR(back->at(p, i), data.at(p, i), 1e-5);
    }
  }
}

TEST(CsvTest, FileRoundTrip) {
  Dataset data = Dataset::FromRows({{1, 2}, {3, 4}});
  const std::string path = ::testing::TempDir() + "/skyline_csv_test.csv";
  ASSERT_TRUE(WriteCsvFile(data, path));
  auto back = ReadCsvFile(path);
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(back->values(), data.values());
}

TEST(CsvTest, MissingFile) {
  EXPECT_FALSE(ReadCsvFile("/nonexistent/path/data.csv").has_value());
}

}  // namespace
}  // namespace skyline
