#include "src/extras/skyband.h"

#include <gtest/gtest.h>

#include <algorithm>

#include "src/core/dominance.h"
#include "src/core/verify.h"
#include "src/data/generator.h"

namespace skyline {
namespace {

/// Brute-force oracle: points with fewer than k dominators.
std::vector<PointId> ReferenceSkyband(const Dataset& data, std::uint32_t k,
                                      std::vector<std::uint32_t>* counts) {
  const Dim d = data.num_dims();
  std::vector<PointId> out;
  for (PointId p = 0; p < data.num_points(); ++p) {
    std::uint32_t dominators = 0;
    for (PointId q = 0; q < data.num_points(); ++q) {
      if (q != p && Dominates(data.row(q), data.row(p), d)) ++dominators;
    }
    if (dominators < k) {
      out.push_back(p);
      if (counts != nullptr) counts->push_back(dominators);
    }
  }
  return out;
}

TEST(SkybandTest, OneSkybandIsTheSkyline) {
  Dataset data = Generate(DataType::kUniformIndependent, 800, 4, 3);
  SkybandResult band = ComputeSkyband(data, 1);
  EXPECT_TRUE(SameIdSet(band.points, ReferenceSkyline(data)));
  for (std::uint32_t c : band.dominator_counts) EXPECT_EQ(c, 0u);
}

class SkybandOracleTest : public ::testing::TestWithParam<std::uint32_t> {};

TEST_P(SkybandOracleTest, MatchesBruteForceWithExactCounts) {
  const std::uint32_t k = GetParam();
  for (DataType type : {DataType::kAntiCorrelated, DataType::kCorrelated,
                        DataType::kUniformIndependent}) {
    Dataset data = Generate(type, 500, 4, 7);
    SkybandResult band = ComputeSkyband(data, k);
    std::vector<std::uint32_t> expected_counts;
    auto expected = ReferenceSkyband(data, k, &expected_counts);
    ASSERT_TRUE(SameIdSet(band.points, expected)) << ShortName(type);
    // Counts: align by id.
    std::vector<std::pair<PointId, std::uint32_t>> got, want;
    for (std::size_t i = 0; i < band.points.size(); ++i) {
      got.emplace_back(band.points[i], band.dominator_counts[i]);
    }
    for (std::size_t i = 0; i < expected.size(); ++i) {
      want.emplace_back(expected[i], expected_counts[i]);
    }
    std::sort(got.begin(), got.end());
    std::sort(want.begin(), want.end());
    EXPECT_EQ(got, want) << ShortName(type);
  }
}

INSTANTIATE_TEST_SUITE_P(Ks, SkybandOracleTest,
                         ::testing::Values(1u, 2u, 3u, 5u, 10u));

TEST(SkybandTest, MonotoneInK) {
  Dataset data = Generate(DataType::kUniformIndependent, 600, 5, 9);
  std::size_t prev = 0;
  for (std::uint32_t k : {1u, 2u, 4u, 8u, 16u}) {
    SkybandResult band = ComputeSkyband(data, k);
    EXPECT_GE(band.points.size(), prev);
    prev = band.points.size();
  }
}

TEST(SkybandTest, LargeKReturnsEverything) {
  Dataset data = Generate(DataType::kCorrelated, 300, 3, 5);
  SkybandResult band = ComputeSkyband(
      data, static_cast<std::uint32_t>(data.num_points()));
  EXPECT_EQ(band.points.size(), data.num_points());
}

TEST(SkybandTest, DuplicatesDoNotDominateEachOther) {
  Dataset data = Dataset::FromRows({{1, 1}, {1, 1}, {2, 2}, {2, 2}});
  SkybandResult band = ComputeSkyband(data, 2);
  // (1,1) twins have 0 dominators; (2,2) twins have exactly 2 (< 2 is
  // false) -> only the twins at (1,1) are in the 2-skyband.
  EXPECT_TRUE(SameIdSet(band.points, {0, 1}));
  SkybandResult band3 = ComputeSkyband(data, 3);
  EXPECT_EQ(band3.points.size(), 4u);
}

TEST(SkybandTest, EmptyAndSingle) {
  Dataset empty(2);
  EXPECT_TRUE(ComputeSkyband(empty, 3).points.empty());
  Dataset one = Dataset::FromRows({{1, 2}});
  EXPECT_EQ(ComputeSkyband(one, 1).points.size(), 1u);
}

}  // namespace
}  // namespace skyline
